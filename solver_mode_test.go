package gapsched

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/poly"
	"repro/internal/prep"
	"repro/internal/sched"
	"repro/internal/workload"
)

// modeCost extracts the configured objective's cost from a Solution.
func modeCost(s Solver, sol Solution) float64 {
	return s.Objective.Cost(sol)
}

// TestModeHeuristicSandwich: heuristic solutions must be feasible and
// sandwiched by their own certificate around the exact optimum, for
// both objectives, through every pipeline shape (prep on and off,
// cached and not).
func TestModeHeuristicSandwich(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	for trial := 0; trial < 120; trial++ {
		in := workload.FeasibleOneInterval(rng, 1+rng.Intn(9), 1+rng.Intn(3), 4+rng.Intn(30), 1+rng.Intn(5))
		for _, base := range []Solver{
			{},
			{Objective: ObjectivePower, Alpha: float64(rng.Intn(9)) / 2},
		} {
			exact := base
			want, err := exact.Solve(in)
			if err != nil {
				t.Fatalf("exact: %v (jobs %v)", err, in.Jobs)
			}
			for _, cfg := range []Solver{
				{Mode: ModeHeuristic},
				{Mode: ModeHeuristic, NoPreprocess: true},
				{Mode: ModeHeuristic, Cache: NewFragmentCache(64)},
			} {
				h := base
				h.Mode, h.NoPreprocess, h.Cache = cfg.Mode, cfg.NoPreprocess, cfg.Cache
				got, err := h.Solve(in)
				if err != nil {
					t.Fatalf("heuristic: %v (jobs %v)", err, in.Jobs)
				}
				if err := got.Schedule.Validate(in); err != nil {
					t.Fatalf("heuristic schedule invalid: %v", err)
				}
				opt, cost := modeCost(base, want), modeCost(base, got)
				if got.LowerBound > opt+1e-9 || cost < opt-1e-9 {
					t.Fatalf("sandwich violated: lb %v opt %v heur %v (jobs %v procs %d cfg %+v)",
						got.LowerBound, opt, cost, in.Jobs, in.Procs, cfg)
				}
				if got.Mode != ModeHeuristic {
					t.Fatalf("solution mode %v, want heuristic", got.Mode)
				}
				if got.HeuristicFragments != got.Subinstances {
					t.Fatalf("heuristic fragments %d, want all %d", got.HeuristicFragments, got.Subinstances)
				}
				if got.States != 0 {
					t.Fatalf("heuristic solve reported %d DP states", got.States)
				}
			}
		}
	}
}

// TestModeAutoGenerousBudgetIsExact: with an unbounded budget ModeAuto
// must be bit-identical to ModeExact — costs, schedules, counters.
func TestModeAutoGenerousBudgetIsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 80; trial++ {
		in := workload.FeasibleOneInterval(rng, 1+rng.Intn(10), 1+rng.Intn(3), 4+rng.Intn(40), 1+rng.Intn(6))
		for _, base := range []Solver{
			{},
			{Objective: ObjectivePower, Alpha: 2.5},
		} {
			auto := base
			auto.Mode, auto.StateBudget = ModeAuto, math.MaxInt
			want, errE := base.Solve(in)
			got, errA := auto.Solve(in)
			if (errE == nil) != (errA == nil) {
				t.Fatalf("auto err %v, exact err %v", errA, errE)
			}
			if errE != nil {
				continue
			}
			if modeCost(base, got) != modeCost(base, want) {
				t.Fatalf("auto cost %v, exact %v (jobs %v)", modeCost(base, got), modeCost(base, want), in.Jobs)
			}
			if !reflect.DeepEqual(got.Schedule, want.Schedule) {
				t.Fatalf("auto schedule differs from exact (jobs %v)", in.Jobs)
			}
			if got.HeuristicFragments != 0 {
				t.Fatalf("auto under unbounded budget used the heuristic on %d fragments", got.HeuristicFragments)
			}
			if got.LowerBound != modeCost(base, want) {
				t.Fatalf("auto-exact lower bound %v, want the optimum %v", got.LowerBound, modeCost(base, want))
			}
			if got.Mode != ModeAuto {
				t.Fatalf("solution mode %v, want auto", got.Mode)
			}
		}
	}
}

// TestModeAutoNegativeBudgetIsHeuristic: a negative budget admits
// nothing to the exact tier, so ModeAuto degenerates to ModeHeuristic
// with identical costs and certificates.
func TestModeAutoNegativeBudgetIsHeuristic(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 60; trial++ {
		in := workload.FeasibleOneInterval(rng, 1+rng.Intn(9), 1+rng.Intn(2), 4+rng.Intn(30), 1+rng.Intn(5))
		auto := Solver{Mode: ModeAuto, StateBudget: -1}
		h := Solver{Mode: ModeHeuristic}
		a, errA := auto.Solve(in)
		b, errB := h.Solve(in)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("auto err %v, heuristic err %v", errA, errB)
		}
		if errA != nil {
			continue
		}
		if a.Spans != b.Spans || a.LowerBound != b.LowerBound {
			t.Fatalf("auto(-1) %d/%v, heuristic %d/%v (jobs %v)", a.Spans, a.LowerBound, b.Spans, b.LowerBound, in.Jobs)
		}
		if a.HeuristicFragments != a.Subinstances {
			t.Fatalf("auto(-1) solved %d of %d fragments heuristically", a.HeuristicFragments, a.Subinstances)
		}
	}
}

// TestModeAutoMixesTiers: on an instance pairing many small clusters
// with one oversized single-processor fragment, a mid-sized budget
// must reject the big fragment from the DP engine. With the polynomial
// backend enabled (default) the big fragment is still solved exactly —
// by poly — so the whole solution is certified; with PolyBudget −1 it
// falls to the heuristic, the pre-poly two-way behavior.
func TestModeAutoMixesTiers(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	var jobs []sched.Job
	for c := 0; c < 4; c++ { // small exact-friendly clusters
		base := c * 100
		for k := 0; k < 4; k++ {
			r := base + rng.Intn(4)
			jobs = append(jobs, sched.Job{Release: r, Deadline: r + 3})
		}
	}
	big := workload.StressDense(rng, 300, 1) // one huge fragment
	for _, j := range big.Jobs {
		jobs = append(jobs, sched.Job{Release: j.Release + 1000, Deadline: j.Deadline + 1000})
	}
	in := NewInstance(jobs)

	// Pick a budget between the small fragments' estimates and the big
	// one's, derived from the decomposition itself.
	pl := prep.ForGaps(in)
	smallMax, bigEst := 0, 0
	for _, sub := range pl.Subs {
		est := prep.StateEstimate(sub.Instance)
		if len(sub.Instance.Jobs) < 100 {
			smallMax = max(smallMax, est)
		} else {
			bigEst = est
		}
	}
	if smallMax == 0 || bigEst <= smallMax {
		t.Fatalf("test instance degenerate: smallMax %d bigEst %d", smallMax, bigEst)
	}

	// Default PolyBudget: the big fragment is single-processor, so the
	// polynomial backend picks it up and the whole solution stays exact.
	sol, err := Solver{Mode: ModeAuto, StateBudget: smallMax}.Solve(in)
	if err != nil {
		t.Fatalf("auto: %v", err)
	}
	if sol.PolyFragments != 1 || sol.HeuristicFragments != 0 {
		t.Fatalf("auto tiers poly=%d heur=%d, want the big fragment on poly and nothing heuristic",
			sol.PolyFragments, sol.HeuristicFragments)
	}
	if err := sol.Schedule.Validate(in); err != nil {
		t.Fatalf("mixed schedule invalid: %v", err)
	}
	if float64(sol.Spans) != sol.LowerBound {
		t.Fatalf("all-exact tiers should certify themselves: spans %d lb %v", sol.Spans, sol.LowerBound)
	}
	if sol.States == 0 {
		t.Fatal("exact fragments reported no DP states")
	}

	// PolyBudget −1 disables the polynomial tier: the big fragment falls
	// to the heuristic, the pre-poly two-way behavior.
	sol2, err := Solver{Mode: ModeAuto, StateBudget: smallMax, PolyBudget: -1}.Solve(in)
	if err != nil {
		t.Fatalf("auto(poly off): %v", err)
	}
	if sol2.HeuristicFragments != 1 || sol2.PolyFragments != 0 {
		t.Fatalf("auto(poly off) tiers poly=%d heur=%d, want exactly the big one heuristic",
			sol2.PolyFragments, sol2.HeuristicFragments)
	}
	if err := sol2.Schedule.Validate(in); err != nil {
		t.Fatalf("mixed schedule invalid: %v", err)
	}
	if sol2.LowerBound <= 0 || float64(sol2.Spans) < sol2.LowerBound {
		t.Fatalf("mixed certificate inverted: spans %d lb %v", sol2.Spans, sol2.LowerBound)
	}
	if sol2.States == 0 {
		t.Fatal("exact fragments reported no DP states")
	}
}

// TestModeAutoPolyAdmissionBoundary pins the three-way gate's edges on
// a single dense fragment: with the DP tier priced out, a PolyBudget of
// exactly the fragment's estimate admits it to the polynomial backend,
// one less rejects it to the heuristic, and a multi-processor fragment
// of the same size never reaches poly at any budget.
func TestModeAutoPolyAdmissionBoundary(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	in := NewInstance(workload.StressDense(rng, 200, 1).Jobs)

	pl := prep.ForGaps(in)
	if len(pl.Subs) != 1 {
		t.Fatalf("dense instance split into %d fragments, want 1", len(pl.Subs))
	}
	frag := pl.Subs[0].Instance
	pe := poly.Estimate(frag)
	if pe <= 0 || !poly.Admissible(frag) {
		t.Fatalf("fragment not poly-admissible (estimate %d)", pe)
	}

	solve := func(polyBudget int) Solution {
		t.Helper()
		sol, err := Solver{Mode: ModeAuto, StateBudget: 1, PolyBudget: polyBudget}.Solve(in)
		if err != nil {
			t.Fatalf("auto(PolyBudget %d): %v", polyBudget, err)
		}
		if err := sol.Schedule.Validate(in); err != nil {
			t.Fatalf("schedule invalid (PolyBudget %d): %v", polyBudget, err)
		}
		return sol
	}

	admitted := solve(pe)
	if admitted.PolyFragments != admitted.Subinstances || admitted.HeuristicFragments != 0 {
		t.Fatalf("budget == estimate: poly=%d heur=%d of %d, want all poly",
			admitted.PolyFragments, admitted.HeuristicFragments, admitted.Subinstances)
	}
	if float64(admitted.Spans) != admitted.LowerBound {
		t.Fatalf("poly-solved fragment not certified: spans %d lb %v", admitted.Spans, admitted.LowerBound)
	}

	rejected := solve(pe - 1)
	if rejected.PolyFragments != 0 || rejected.HeuristicFragments != rejected.Subinstances {
		t.Fatalf("budget == estimate−1: poly=%d heur=%d of %d, want all heuristic",
			rejected.PolyFragments, rejected.HeuristicFragments, rejected.Subinstances)
	}
	if float64(rejected.Spans) < rejected.LowerBound {
		t.Fatalf("heuristic certificate inverted: spans %d lb %v", rejected.Spans, rejected.LowerBound)
	}

	// Multi-processor fragments never reach poly, however generous the
	// budget: Admissible gates on p ≤ 1.
	multi := NewMultiprocInstance(workload.StressDense(rng, 200, 2).Jobs, 2)
	sol, err := Solver{Mode: ModeAuto, StateBudget: 1, PolyBudget: math.MaxInt}.Solve(multi)
	if err != nil {
		t.Fatalf("auto(multi-proc): %v", err)
	}
	if sol.PolyFragments != 0 || sol.HeuristicFragments != sol.Subinstances {
		t.Fatalf("multi-proc: poly=%d heur=%d of %d, want all heuristic",
			sol.PolyFragments, sol.HeuristicFragments, sol.Subinstances)
	}
}

// TestModeTiersShareCacheSafely: a cache shared between an exact and a
// heuristic Solver must never serve one tier's fragment solution to the
// other — solving the same instance through both, in both orders, must
// keep the exact answer optimal.
func TestModeTiersShareCacheSafely(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	for trial := 0; trial < 40; trial++ {
		in := workload.FeasibleOneInterval(rng, 1+rng.Intn(8), 1, 4+rng.Intn(24), 1+rng.Intn(5))
		want, err := Solver{}.Solve(in)
		if err != nil {
			t.Fatalf("exact: %v", err)
		}
		cache := NewFragmentCache(256)
		hs := Solver{Mode: ModeHeuristic, Cache: cache}
		es := Solver{Cache: cache}
		// Heuristic first (possibly suboptimal entries in the cache),
		// then exact through the same cache.
		h1, err := hs.Solve(in)
		if err != nil {
			t.Fatalf("heuristic: %v", err)
		}
		e1, err := es.Solve(in)
		if err != nil {
			t.Fatalf("exact-cached: %v", err)
		}
		if e1.Spans != want.Spans {
			t.Fatalf("exact through shared cache got %d spans, want %d (heur had %d; jobs %v)",
				e1.Spans, want.Spans, h1.Spans, in.Jobs)
		}
		// And the heuristic's own repeat must hit its tier's entries
		// without changing its answer.
		h2, err := hs.Solve(in)
		if err != nil {
			t.Fatalf("heuristic repeat: %v", err)
		}
		if h2.Spans != h1.Spans || h2.LowerBound != h1.LowerBound {
			t.Fatalf("cached heuristic drifted: %d/%v then %d/%v", h1.Spans, h1.LowerBound, h2.Spans, h2.LowerBound)
		}
		if h2.CacheHits == 0 && h2.Subinstances > 0 {
			t.Fatal("heuristic repeat missed the cache entirely")
		}
	}
}

// TestModeValidation: an out-of-range mode must fail identically
// through Solve, SolveBatch, and Open.
func TestModeValidation(t *testing.T) {
	bad := Solver{Mode: Mode(99)}
	in := NewInstance([]sched.Job{{Release: 0, Deadline: 1}})
	_, errSolve := bad.Solve(in)
	if errSolve == nil {
		t.Fatal("Solve accepted mode 99")
	}
	res := bad.SolveBatch([]Instance{in})
	if res[0].Err == nil || res[0].Err.Error() != errSolve.Error() {
		t.Fatalf("SolveBatch error %v, want %v", res[0].Err, errSolve)
	}
	if _, err := bad.Open(1); err == nil || err.Error() != errSolve.Error() {
		t.Fatalf("Open error %v, want %v", err, errSolve)
	}
}

// TestParseMode round-trips every mode name and rejects garbage.
func TestParseMode(t *testing.T) {
	for _, m := range []Mode{ModeExact, ModeHeuristic, ModeAuto} {
		got, err := ParseMode(m.String())
		if err != nil || got != m {
			t.Fatalf("ParseMode(%q) = %v, %v", m.String(), got, err)
		}
	}
	if m, err := ParseMode(""); err != nil || m != ModeExact {
		t.Fatalf("ParseMode(\"\") = %v, %v", m, err)
	}
	if _, err := ParseMode("fast"); err == nil {
		t.Fatal("ParseMode accepted \"fast\"")
	}
	if s := Mode(99).String(); s != "Mode(99)" {
		t.Fatalf("Mode(99).String() = %q", s)
	}
}

// TestExactSolutionsCertifyThemselves: every exact solve's LowerBound
// must equal its own optimal cost, for both objectives, solo and
// batched.
func TestExactSolutionsCertifyThemselves(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	ins := make([]Instance, 16)
	for i := range ins {
		ins[i] = workload.FeasibleOneInterval(rng, 1+rng.Intn(8), 1+rng.Intn(2), 4+rng.Intn(24), 1+rng.Intn(5))
	}
	for _, s := range []Solver{{}, {Objective: ObjectivePower, Alpha: 3}} {
		for i, r := range s.SolveBatch(ins) {
			if r.Err != nil {
				t.Fatalf("batch[%d]: %v", i, r.Err)
			}
			if r.Solution.LowerBound != modeCost(s, r.Solution) {
				t.Fatalf("exact solution %d: lb %v != cost %v", i, r.Solution.LowerBound, modeCost(s, r.Solution))
			}
			if r.Solution.HeuristicFragments != 0 || r.Solution.Mode != ModeExact {
				t.Fatalf("exact solution %d carries heuristic markers: %+v", i, r.Solution)
			}
		}
	}
}

// TestHeuristicSessionMatchesOneShot: a heuristic-mode session must
// stay bit-identical to a from-scratch heuristic solve of its snapshot
// after every delta, certificates included.
func TestHeuristicSessionMatchesOneShot(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	for _, s := range []Solver{
		{Mode: ModeHeuristic},
		{Mode: ModeHeuristic, Objective: ObjectivePower, Alpha: 3},
		{Mode: ModeAuto, StateBudget: -1},
	} {
		sess, err := s.Open(1)
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		var live []int
		for d := 0; d < 40; d++ {
			if d%3 != 2 || len(live) == 0 {
				r := rng.Intn(120)
				id, err := sess.Add(Job{Release: r, Deadline: r + rng.Intn(6)})
				if err != nil {
					t.Fatalf("Add: %v", err)
				}
				live = append(live, id)
			} else {
				k := rng.Intn(len(live))
				if err := sess.Remove(live[k]); err != nil {
					t.Fatalf("Remove: %v", err)
				}
				live = append(live[:k], live[k+1:]...)
			}
			snapshot := sess.Instance()
			want, wantErr := s.Solve(snapshot)
			got, gotErr := sess.Resolve()
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("session err %v, scratch err %v", gotErr, wantErr)
			}
			if gotErr != nil {
				if !errors.Is(gotErr, ErrInfeasible) {
					t.Fatalf("session err %v, want ErrInfeasible", gotErr)
				}
				continue
			}
			if modeCost(s, got) != modeCost(s, want) || got.LowerBound != want.LowerBound {
				t.Fatalf("session %v/%v, scratch %v/%v (jobs %v)",
					modeCost(s, got), got.LowerBound, modeCost(s, want), want.LowerBound, snapshot.Jobs)
			}
			if got.HeuristicFragments != want.HeuristicFragments || got.Mode != s.Mode {
				t.Fatalf("session markers %d/%v, scratch %d", got.HeuristicFragments, got.Mode, want.HeuristicFragments)
			}
		}
		sess.Close()
	}
}
