// Package gapsched is a complete implementation of the algorithms of
//
//	Demaine, Ghodsi, Hajiaghayi, Sayedi-Roshkhar, Zadimoghaddam.
//	"Scheduling to Minimize Gaps and Power Consumption", SPAA 2007.
//
// The package schedules unit-length jobs on one or more processors that
// can sleep at a wake-up cost α, minimizing either the number of
// sleep→active transitions ("gap scheduling") or the total power
// consumption (active time plus α per transition, with idle-active
// bridging of short gaps).
//
// Exact polynomial algorithms (Theorems 1–2):
//
//   - MinimizeGaps — multiprocessor gap scheduling by dynamic
//     programming over interval decompositions.
//   - MinimizePower — the same skeleton for total power, where a
//     processor may stay awake through a gap of length ℓ at cost
//     min(ℓ, α).
//
// Approximation algorithms:
//
//   - ApproxMultiPower — the (1 + (2/3+ε)α)-approximation for
//     multi-interval power minimization (Theorem 3), via shifted-run
//     set packing and augmenting-path completion.
//   - GreedyGapSchedule — the largest-idle-interval-first greedy
//     baseline for one-interval gap scheduling [FHKN06].
//   - MaxThroughput — the O(√n)-approximation for maximum throughput
//     under a bound on the number of restarts (Theorem 11).
//
// Hardness constructions (Theorems 4–10) live in internal/reduction and
// are exercised by the experiment harness (cmd/gapbench); they are
// intentionally not part of the stable facade.
//
// See DESIGN.md for the system inventory and objective conventions, and
// EXPERIMENTS.md for the reproduced results.
package gapsched

import (
	"repro/internal/arith"
	"repro/internal/core"
	"repro/internal/feas"
	"repro/internal/greedysp"
	"repro/internal/multiinterval"
	"repro/internal/power"
	"repro/internal/restart"
	"repro/internal/sched"
)

// Core model types, aliased from internal/sched.
type (
	// Job is a unit task with a one-interval window [Release, Deadline].
	Job = sched.Job
	// Instance is a one-interval instance on Procs processors.
	Instance = sched.Instance
	// Assignment places one job on a processor at a time.
	Assignment = sched.Assignment
	// Schedule assigns every job of an Instance.
	Schedule = sched.Schedule
	// Interval is a closed integer interval.
	Interval = sched.Interval
	// MultiJob is a unit task with an arbitrary allowed-time set.
	MultiJob = sched.MultiJob
	// MultiInstance is a single-machine multi-interval instance.
	MultiInstance = sched.MultiInstance
	// MultiSchedule assigns every job of a MultiInstance a time.
	MultiSchedule = sched.MultiSchedule
)

// Result types, aliased from the solver packages.
type (
	// GapResult reports an exact minimum-wake-up solve.
	GapResult = core.Result
	// PowerResult reports an exact minimum-power solve.
	PowerResult = core.PowerResult
	// ApproxOptions configures ApproxMultiPower.
	ApproxOptions = multiinterval.Options
	// ApproxStats reports what the approximation pipeline did.
	ApproxStats = multiinterval.Stats
	// GreedyResult reports the [FHKN06] greedy outcome.
	GreedyResult = greedysp.Result
	// ThroughputResult reports a bounded-restart greedy outcome.
	ThroughputResult = restart.Result
	// Timeline is a simulated power-state timeline.
	Timeline = power.Timeline
	// Breakdown itemizes energy use.
	Breakdown = power.Breakdown
)

// ErrInfeasible is returned by the exact solvers when no feasible
// schedule exists.
var ErrInfeasible = core.ErrInfeasible

// NewInstance builds a single-processor one-interval instance.
func NewInstance(jobs []Job) Instance { return sched.NewInstance(jobs) }

// NewMultiprocInstance builds a p-processor one-interval instance.
func NewMultiprocInstance(jobs []Job, p int) Instance { return sched.NewMultiprocInstance(jobs, p) }

// NewMultiJob builds a multi-interval job from intervals (normalized).
func NewMultiJob(ivs ...Interval) MultiJob { return sched.NewMultiJob(ivs...) }

// MultiJobFromTimes builds a multi-interval job from explicit times.
func MultiJobFromTimes(times ...int) MultiJob { return sched.MultiJobFromTimes(times...) }

// MinimizeGaps computes an optimal schedule minimizing the total number
// of spans (sleep→active transitions) on in.Procs processors
// (Theorem 1; with one processor this is Baptiste's classic gap
// minimization, gaps = spans − 1).
func MinimizeGaps(in Instance) (GapResult, error) { return core.SolveGaps(in) }

// MinimizePower computes an optimal schedule minimizing total power
// consumption with transition cost alpha, allowing processors to remain
// active through gaps (Theorem 2).
func MinimizePower(in Instance, alpha float64) (PowerResult, error) {
	return core.SolvePower(in, alpha)
}

// Feasible reports whether the one-interval instance admits any
// feasible schedule (Hall's condition).
func Feasible(in Instance) bool { return feas.FeasibleOneInterval(in) }

// FeasibleMulti reports whether the multi-interval instance admits any
// feasible schedule (maximum matching).
func FeasibleMulti(mi MultiInstance) bool { return feas.FeasibleMulti(mi) }

// EDF returns the eager earliest-deadline-first schedule, the canonical
// online baseline; ok is false when the instance is infeasible.
func EDF(in Instance) (Schedule, bool) { return feas.EDFOneInterval(in) }

// ApproxMultiPower runs the Theorem 3 pipeline on a multi-interval
// instance: shifted-run set packing, scheduling of packed runs, and
// augmenting-path completion, achieving power at most
// (1 + (2/3+ε)α)·OPT.
func ApproxMultiPower(mi MultiInstance, alpha float64, opts ApproxOptions) (MultiSchedule, ApproxStats, error) {
	return multiinterval.ApproxPower(mi, alpha, opts)
}

// AnyMultiSchedule returns an arbitrary feasible schedule via maximum
// matching — the trivial (1+α)-approximation for power.
func AnyMultiSchedule(mi MultiInstance) (MultiSchedule, error) {
	return multiinterval.NaiveSchedule(mi)
}

// GreedyGapSchedule runs the [FHKN06] largest-idle-interval-first
// greedy on a single-processor one-interval instance.
func GreedyGapSchedule(in Instance) (GreedyResult, error) { return greedysp.Solve(in) }

// MaxThroughput runs the Theorem 11 greedy: schedule as many jobs of
// the multi-interval instance as possible using at most maxSpans
// working intervals (restarts).
func MaxThroughput(mi MultiInstance, maxSpans int) (ThroughputResult, error) {
	return restart.Greedy(mi, maxSpans)
}

// Simulate derives the optimal-bridging power-state timeline of a
// schedule under transition cost alpha.
func Simulate(s Schedule, alpha float64) Timeline { return power.Simulate(s, alpha) }

// SimulateMulti derives the timeline of a multi-interval schedule.
func SimulateMulti(ms MultiSchedule, alpha float64) Timeline {
	return power.SimulateMulti(ms, alpha)
}

// LayOut converts a p-processor one-interval instance into the
// equivalent single-machine multi-interval instance of §1 (processor
// timelines laid end to end; each job becomes an arithmetic sequence of
// p intervals). It returns the instance and the layout period.
func LayOut(in Instance) (MultiInstance, int) { return sched.LayOut(in) }

// ArithmeticResult reports an exact solve of a homogeneous arithmetic
// multi-interval instance (§2 corollary of Theorem 1).
type ArithmeticResult = arith.Result

// SolveArithmetic solves a multi-interval instance in which every job's
// intervals form an arithmetic progression with a common term count and
// a common long period, exactly and in polynomial time, by recovering
// the underlying multiprocessor instance (the §2 corollary). It returns
// arith.ErrNotArithmetic or arith.ErrShortPeriod when the structure
// does not apply.
func SolveArithmetic(mi MultiInstance) (ArithmeticResult, error) { return arith.Solve(mi) }
